// Name-based protocol registry for CLI tools, benches and matrix tests.
//
// Protocols register a factory under a unique name. The built-in monitors
// self-register on first use; extensions (tests, experiments, downstream
// embedders) add theirs with register_protocol. Names are unique — a second
// registration under an existing name is a conflicting re-registration and
// throws — and protocol_names() is always sorted and duplicate-free.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/protocol.hpp"

namespace topkmon {

using ProtocolFactory = std::function<std::unique_ptr<MonitoringProtocol>()>;

/// Registers `factory` under `name`. Throws std::runtime_error when the name
/// is empty or already registered (conflicting re-registration) — silently
/// shadowing an existing protocol would corrupt every name-based experiment.
void register_protocol(const std::string& name, ProtocolFactory factory);

/// Constructs the monitoring protocol named `name`; throws
/// std::runtime_error for unknown names. Built-in names: combined,
/// exact_topk, half_error, kselect, naive_central, naive_change,
/// topk_protocol.
std::unique_ptr<MonitoringProtocol> make_protocol(const std::string& name);

/// All registered protocol names, sorted ascending, no duplicates.
std::vector<std::string> protocol_names();

}  // namespace topkmon
