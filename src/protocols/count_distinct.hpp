// COUNTDISTINCT — continuous count-distinct over the value domain
// (QueryKind::kCountDistinct), in the domain-monitoring spirit of Bemmann et
// al. (arXiv:1706.03568): the same filter/violation machinery the paper
// builds for top-k positions, pointed at a different domain function.
//
// Contract: after every hook, distinct_count() is the EXACT number of
// distinct ε-bands (model/band_ladder.hpp) occupied by the fleet's current
// values. With ε = 0 the ladder degenerates to unit bands and the answer is
// the exact number of distinct values; ε > 0 coarsens the domain so that
// values within a (1−ε) factor of each other count once — the approximation
// lives in the domain grid, the count itself is always exact and
// deterministic (strict mode checks it against Oracle::distinct_count).
//
// Mechanics: every node holds the filter of its own band, so a value moving
// within its band is free, and any band change surfaces as a filter
// violation. The server keeps a mergeable per-shard DistinctSketch
// (model/distinct_sketch.hpp): start() builds one sketch per fleet stripe
// from a deterministic collect and merges them (the shard-combining operator
// the networked runtime's data plane would use), then maintains the merged
// sketch incrementally — one remove + add per re-band. Filters are always
// derivable node-side from the node's own value plus the ladder (a pure
// function of ε), so re-banding costs zero server messages beyond the
// accounted violation report, and (re)installation is one broadcast.
//
// This protocol serves no top-k output (output() stays empty) — it
// advertises exactly kCountDistinct through QueryCapabilities.
#pragma once

#include <cstdint>
#include <vector>

#include "model/band_ladder.hpp"
#include "model/distinct_sketch.hpp"
#include "sim/protocol.hpp"

namespace topkmon {

class CountDistinctMonitor : public MonitoringProtocol, public QueryCapabilities {
 public:
  void start(SimContext& ctx) override;
  void on_step(SimContext& ctx) override;
  const OutputSet& output() const override { return output_; }
  const QueryCapabilities* capabilities() const override { return this; }
  std::string_view name() const override { return "count_distinct"; }

  bool supports(QueryKind kind) const override {
    return kind == QueryKind::kCountDistinct;
  }
  std::uint64_t distinct_count() const override { return sketch_.distinct(); }

  // Introspection for tests/benches.
  const BandLadder& ladder() const { return ladder_; }
  const DistinctSketch& sketch() const { return sketch_; }
  Value node_band_lo(NodeId i) const { return band_lo_[i]; }

  /// Stripe width of the per-shard sketches start() merges.
  static constexpr std::size_t kSketchStripe = 16;

 private:
  Filter band_filter(Value v) const;

  BandLadder ladder_;
  DistinctSketch sketch_;       ///< merged fleet occupancy
  std::vector<Value> band_lo_;  ///< per-node current band (server view)
  OutputSet output_;            ///< always empty: no top-k surface
};

}  // namespace topkmon
