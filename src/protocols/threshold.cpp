#include "protocols/threshold.hpp"

#include "protocols/generic_framework.hpp"

namespace topkmon {

bool any_above(SimContext& ctx, double threshold) {
  return ctx
      .existence([threshold](const Node& node) {
        return static_cast<double>(node.value()) > threshold;
      })
      .any;
}

bool any_below(SimContext& ctx, double threshold) {
  return ctx
      .existence([threshold](const Node& node) {
        return static_cast<double>(node.value()) < threshold;
      })
      .any;
}

bool all_quiet(SimContext& ctx) { return !ctx.collect_violations().any; }

std::vector<SimContext::ProbeResult> collect_at_least(SimContext& ctx,
                                                      double threshold) {
  return enumerate_nodes(ctx, [threshold](const Node& node) {
    return static_cast<double>(node.value()) >= threshold;
  });
}

std::vector<SimContext::ProbeResult> collect_all_deterministic(SimContext& ctx) {
  std::vector<SimContext::ProbeResult> out;
  out.reserve(ctx.n());
  for (NodeId i = 0; i < ctx.n(); ++i) {
    out.push_back({i, ctx.report_value(i, MessageTag::kOther)});
  }
  return out;
}

}  // namespace topkmon
