#include "protocols/kselect_structure.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace topkmon {

Filter KSelectStructure::band_filter(NodeId id) const {
  // Bands are half-open; filters are closed intervals on the integer grid.
  return Filter{static_cast<double>(band_lo_[id]),
                static_cast<double>(band_hi_[id] - 1)};
}

Filter KSelectStructure::inactive_filter() const {
  TOPKMON_ASSERT(act_lo_ > 0);
  return Filter{0.0, static_cast<double>(act_lo_ - 1)};
}

void KSelectStructure::activate(NodeId id, Value value) {
  TOPKMON_ASSERT(!active_[id]);
  active_[id] = 1;
  ++active_count_;
  band_lo_[id] = ladder_.band_lo(value);
  band_hi_[id] = ladder_.band_hi(value);
  last_report_[id] = value;
}

void KSelectStructure::deactivate(NodeId id) {
  TOPKMON_ASSERT(active_[id]);
  active_[id] = 0;
  --active_count_;
}

void KSelectStructure::broadcast_all_filters(SimContext& ctx) {
  // One broadcast: every node derives its filter from its (server-known)
  // activity/band plus the public floor.
  ctx.broadcast_filters([this](const Node& node) {
    return active_[node.id()] ? band_filter(node.id()) : inactive_filter();
  });
}

void KSelectStructure::start(SimContext& ctx) {
  n_ = ctx.n();
  k_ = ctx.k();
  ++rebuilds_;
  ladder_.reset(ctx.epsilon());
  active_.assign(n_, 0);
  band_lo_.assign(n_, 0);
  band_hi_.assign(n_, 0);
  last_report_.assign(n_, 0);
  active_count_ = 0;
  estimates_.assign(k_, 0);
  order_.reserve(n_);

  // Seed: the k-th largest value picks the activation floor — every top-k
  // node sits at or above its band's lower boundary, so the enumeration
  // below finds at least k actives (invariant I3).
  const ProbeInfo info = probe_top_k_plus_1(ctx);
  act_lo_ = ladder_.band_lo(info.vk);
  const Value floor = act_lo_;
  const auto found = enumerate_nodes(
      ctx, [floor](const Node& node) { return node.value() >= floor; });
  for (const auto& [id, value] : found) {
    activate(id, value);
  }
  TOPKMON_ASSERT_MSG(active_count_ >= k_, "k-select seed missed top-k nodes");
  compact_if_needed();
  broadcast_all_filters(ctx);
  dirty_ = true;
  // No violation can survive the broadcast (enumerated nodes got their own
  // band, the rest sit below the floor), but recovery restarts land here
  // with arbitrary prior state — drain defensively like TOPKPROTOCOL does.
  on_step(ctx);
}

void KSelectStructure::on_step(SimContext& ctx) {
  drain_violations(ctx, [&](NodeId id, Value value, Violation side) {
    handle(ctx, id, value, side);
  });
  refresh_queries();
}

void KSelectStructure::handle(SimContext& ctx, NodeId id, Value value,
                              Violation side) {
  dirty_ = true;
  last_report_[id] = value;
  if (!active_[id]) {
    // Inactive filters have lo = 0: only an upward escape is possible, and
    // it lands strictly above the floor band.
    TOPKMON_ASSERT(side == Violation::kFromBelow);
    activate(id, value);
    ctx.set_filter_free(id, band_filter(id));
    if (compact_if_needed()) {
      broadcast_all_filters(ctx);
    }
    return;
  }
  if (value >= act_lo_) {
    // Active node moved to another band at or above the floor: re-band.
    // The node derives the new filter from its own value; the report
    // itself was booked by collect_violations.
    band_lo_[id] = ladder_.band_lo(value);
    band_hi_[id] = ladder_.band_hi(value);
    ctx.set_filter_free(id, band_filter(id));
    return;
  }
  // Active node sank below the floor (act_lo_ > 0 here, else value ≥ 0 ≥
  // act_lo_ would have hit the branch above).
  deactivate(id);
  ctx.set_filter_free(id, inactive_filter());
  if (active_count_ < k_) {
    refill(ctx);
    broadcast_all_filters(ctx);
  }
}

void KSelectStructure::refill(SimContext& ctx) {
  ++floor_lowerings_;
  while (active_count_ < k_) {
    TOPKMON_ASSERT_MSG(act_lo_ > 0, "k-select refill ran out of nodes");
    // One band down: the enumeration uncovers the quiescent occupants of
    // the next band, plus any not-yet-drained riser above it (banded by its
    // own value, so absorbing it here is equivalent to draining it later).
    const Value new_lo = ladder_.band_lo(act_lo_ - 1);
    const auto found =
        enumerate_nodes(ctx, [this, new_lo](const Node& node) {
          return !active_[node.id()] && node.value() >= new_lo;
        });
    act_lo_ = new_lo;
    for (const auto& [id, value] : found) {
      activate(id, value);
    }
  }
}

bool KSelectStructure::compact_if_needed() {
  const std::size_t limit = std::max<std::size_t>(4 * k_, 8);
  if (active_count_ <= limit) {
    return false;
  }
  // New floor: the 2k-th highest active band. Ties at the boundary stay
  // active, so at least 2k ≥ k survive; everything strictly below folds
  // into the (now wider) inactive filter.
  const std::size_t keep = std::max<std::size_t>(2 * k_, 4);
  order_.clear();
  for (NodeId i = 0; i < n_; ++i) {
    if (active_[i]) {
      order_.push_back(i);
    }
  }
  std::nth_element(order_.begin(), order_.begin() + (keep - 1), order_.end(),
                   [this](NodeId a, NodeId b) { return band_lo_[a] > band_lo_[b]; });
  const Value cand = band_lo_[order_[keep - 1]];
  if (cand <= act_lo_) {
    return false;  // massive ties at the floor band; nothing to drop
  }
  ++floor_raises_;
  for (NodeId i = 0; i < n_; ++i) {
    if (active_[i] && band_lo_[i] < cand) {
      deactivate(i);
    }
  }
  act_lo_ = cand;
  return true;
}

void KSelectStructure::refresh_queries() {
  if (!dirty_) {
    return;
  }
  dirty_ = false;
  order_.clear();
  for (NodeId i = 0; i < n_; ++i) {
    if (active_[i]) {
      order_.push_back(i);
    }
  }
  TOPKMON_ASSERT(order_.size() >= k_);
  // Band-first order is what the validity proofs in the header use; the
  // within-band tie-break (freshest report, then id) keeps ε = 0 exact and
  // matches the oracle's ranking on unit bands.
  std::sort(order_.begin(), order_.end(), [this](NodeId a, NodeId b) {
    if (band_lo_[a] != band_lo_[b]) return band_lo_[a] > band_lo_[b];
    if (last_report_[a] != last_report_[b]) return last_report_[a] > last_report_[b];
    return a < b;
  });
  output_.assign(order_.begin(), order_.begin() + k_);
  std::sort(output_.begin(), output_.end());
  for (std::size_t j = 0; j < k_; ++j) {
    estimates_[j] = band_lo_[order_[j]];
  }
}

Value KSelectStructure::kselect(std::size_t j) const {
  TOPKMON_ASSERT_MSG(j >= 1 && j <= k_, "kselect rank out of range");
  return estimates_[j - 1];
}

}  // namespace topkmon
