// Non-competitive baselines for context in the benches.
//
// * NaiveCentralMonitor: every node reports its value every step; the
//   server recomputes the exact top-k. Cost: n + 1 messages per step.
//   The canonical "no filters" straw man.
// * NaiveChangeMonitor: zero-width (point) filters — a node reports exactly
//   when its value changed; the server tracks all values and recomputes the
//   exact top-k. Cost: #changed nodes per step (plus one broadcast at start
//   establishing the "your filter is your last reported value" rule).
//
// Both produce *exact* outputs, so they are also valid ε-outputs for any ε;
// both use valid filter sets (point filters of an exact top-k configuration
// always satisfy Observation 2.2).
#pragma once

#include "sim/protocol.hpp"

namespace topkmon {

class NaiveCentralMonitor final : public MonitoringProtocol {
 public:
  void start(SimContext& ctx) override;
  void on_step(SimContext& ctx) override;
  /// Every step already re-collects the full fleet; membership changes need
  /// no extra work beyond the regular step.
  void on_membership_change(SimContext& ctx) override { on_step(ctx); }
  const OutputSet& output() const override { return output_; }
  std::string_view name() const override { return "naive_central"; }

 private:
  void collect_and_recompute(SimContext& ctx);

  OutputSet output_;
  ValueVector known_;
};

class NaiveChangeMonitor final : public MonitoringProtocol {
 public:
  void start(SimContext& ctx) override;
  void on_step(SimContext& ctx) override;
  /// Point filters already flag every node whose observation moved (a
  /// rejoining node's jump included); the regular step recovers incrementally
  /// instead of re-reporting all n values via start().
  void on_membership_change(SimContext& ctx) override { on_step(ctx); }
  const OutputSet& output() const override { return output_; }
  std::string_view name() const override { return "naive_change"; }

 private:
  void recompute(SimContext& ctx);

  OutputSet output_;
  ValueVector known_;
};

}  // namespace topkmon
