#include "protocols/registry.hpp"

#include <map>
#include <mutex>
#include <stdexcept>

#include "protocols/combined.hpp"
#include "protocols/count_distinct.hpp"
#include "protocols/exact_topk.hpp"
#include "protocols/half_error.hpp"
#include "protocols/kselect_structure.hpp"
#include "protocols/naive.hpp"
#include "protocols/threshold_alert.hpp"
#include "protocols/topk_protocol.hpp"

namespace topkmon {

namespace {

// std::map keeps the table sorted by name, so listing is sorted and
// duplicate-free by construction.
using Registry = std::map<std::string, ProtocolFactory>;

std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}

template <typename P>
void add_builtin(Registry& reg) {
  reg.emplace(P{}.name(), [] { return std::make_unique<P>(); });
}

Registry& registry_locked() {
  static Registry reg = [] {
    Registry r;
    add_builtin<CombinedMonitor>(r);
    add_builtin<CountDistinctMonitor>(r);
    add_builtin<ExactTopKMonitor>(r);
    add_builtin<HalfErrorMonitor>(r);
    add_builtin<KSelectStructure>(r);
    add_builtin<NaiveCentralMonitor>(r);
    add_builtin<NaiveChangeMonitor>(r);
    add_builtin<ThresholdAlertMonitor>(r);
    add_builtin<TopKProtocol>(r);
    return r;
  }();
  return reg;
}

}  // namespace

void register_protocol(const std::string& name, ProtocolFactory factory) {
  if (name.empty()) {
    throw std::runtime_error("protocol registration needs a non-empty name");
  }
  if (factory == nullptr) {
    throw std::runtime_error("protocol registration needs a factory: " + name);
  }
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto [it, inserted] = registry_locked().emplace(name, std::move(factory));
  if (!inserted) {
    throw std::runtime_error("conflicting protocol re-registration: " + name);
  }
}

std::unique_ptr<MonitoringProtocol> make_protocol(const std::string& name) {
  ProtocolFactory factory;
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    const Registry& reg = registry_locked();
    const auto it = reg.find(name);
    if (it == reg.end()) {
      throw std::runtime_error("unknown protocol: " + name);
    }
    factory = it->second;
  }
  return factory();
}

std::vector<std::string> protocol_names() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const Registry& reg = registry_locked();
  std::vector<std::string> names;
  names.reserve(reg.size());
  for (const auto& [name, factory] : reg) {
    (void)factory;
    names.push_back(name);
  }
  return names;
}

}  // namespace topkmon
