#include "protocols/registry.hpp"

#include <stdexcept>

#include "protocols/combined.hpp"
#include "protocols/exact_topk.hpp"
#include "protocols/half_error.hpp"
#include "protocols/naive.hpp"
#include "protocols/topk_protocol.hpp"

namespace topkmon {

std::unique_ptr<MonitoringProtocol> make_protocol(const std::string& name) {
  if (name == "exact_topk") return std::make_unique<ExactTopKMonitor>();
  if (name == "topk_protocol") return std::make_unique<TopKProtocol>();
  if (name == "combined") return std::make_unique<CombinedMonitor>();
  if (name == "half_error") return std::make_unique<HalfErrorMonitor>();
  if (name == "naive_central") return std::make_unique<NaiveCentralMonitor>();
  if (name == "naive_change") return std::make_unique<NaiveChangeMonitor>();
  throw std::runtime_error("unknown protocol: " + name);
}

std::vector<std::string> protocol_names() {
  return {"exact_topk", "topk_protocol", "combined",
          "half_error", "naive_central", "naive_change"};
}

}  // namespace topkmon
