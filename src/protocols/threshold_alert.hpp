// THRESHOLDALERT — continuous threshold monitoring (QueryKind::kThreshold):
// fire an alert while any node's value is strictly above a bound T, and keep
// the exact count of such nodes.
//
// This is the "are there nodes above a certain threshold" subtask the paper
// names under Corollary 3.2, promoted from a one-shot query
// (protocols/threshold.hpp helpers) to a continuously maintained one via the
// `existence`/`generic_framework` seam:
//
//   * Filters partition the domain at T — nodes above hold (T, Δ], nodes at
//     or below hold [0, T] — so a node crossing the bound in either
//     direction is exactly a filter violation, and quiescence means the
//     server's above-set is exact.
//   * start() learns the initial above-set by EXISTENCE-enumeration
//     (O(|above| + 1) expected messages, Lemma 3.1) and installs the
//     partition with one broadcast; both filter shapes are derivable
//     node-side from the public bound.
//   * Steady state is the violation drain: flipping a node between sides is
//     one accounted report plus a node-side filter re-derivation.
//
// The bound T is per-query configuration (SimContext::threshold, wired from
// QuerySpec/SimConfig/RunSpec). alert_active()/above_count() are exact and
// deterministic; strict mode checks them against Oracle::count_above.
//
// This protocol serves no top-k output (output() stays empty) — it
// advertises exactly kThreshold through QueryCapabilities.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/protocol.hpp"

namespace topkmon {

class ThresholdAlertMonitor : public MonitoringProtocol, public QueryCapabilities {
 public:
  void start(SimContext& ctx) override;
  void on_step(SimContext& ctx) override;
  const OutputSet& output() const override { return output_; }
  const QueryCapabilities* capabilities() const override { return this; }
  std::string_view name() const override { return "threshold_alert"; }

  bool supports(QueryKind kind) const override {
    return kind == QueryKind::kThreshold;
  }
  bool alert_active() const override { return above_count_ > 0; }
  std::uint64_t above_count() const override { return above_count_; }

  // Introspection for tests/benches.
  Value bound() const { return bound_; }
  bool is_above(NodeId i) const { return above_[i] != 0; }

 private:
  Filter above_filter() const;
  Filter below_filter() const;

  Value bound_ = 0;
  std::vector<std::uint8_t> above_;  ///< server's side-of-the-bound view
  std::uint64_t above_count_ = 0;
  OutputSet output_;  ///< always empty: no top-k surface
};

}  // namespace topkmon
