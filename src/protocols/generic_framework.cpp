#include "protocols/generic_framework.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace topkmon {

ProbeInfo probe_top_k_plus_1(SimContext& ctx) {
  TOPKMON_ASSERT_MSG(ctx.k() < ctx.n(), "protocols require k < n");
  ProbeInfo info;
  info.ranked = ctx.probe_top(ctx.k() + 1);
  TOPKMON_ASSERT(info.ranked.size() == ctx.k() + 1);
  info.top_ids.reserve(ctx.k());
  for (std::size_t i = 0; i < ctx.k(); ++i) {
    info.top_ids.push_back(info.ranked[i].id);
  }
  std::sort(info.top_ids.begin(), info.top_ids.end());
  info.vk = info.ranked[ctx.k() - 1].value;
  info.vk1 = info.ranked[ctx.k()].value;
  return info;
}

void drain_violations(SimContext& ctx,
                      const std::function<void(NodeId, Value, Violation)>& handler,
                      std::uint64_t max_iters) {
  for (std::uint64_t iter = 0;; ++iter) {
    TOPKMON_ASSERT_MSG(iter < max_iters, "violation drain did not converge");
    auto res = ctx.collect_violations();
    if (!res.any) return;
    // Process the first reporter; the other senders' reports are stale the
    // moment the handler changes filters, so the server ignores them (their
    // messages are already accounted). Nodes still violating will re-report
    // in the next EXISTENCE run.
    const auto& hit = res.senders.front();
    const Violation side = ctx.nodes()[hit.id].filter().check(hit.value);
    TOPKMON_ASSERT(side != Violation::kNone);
    handler(hit.id, hit.value, side);
  }
}

std::vector<SimContext::ProbeResult> enumerate_nodes(
    SimContext& ctx, const std::function<bool(const Node&)>& pred) {
  std::vector<SimContext::ProbeResult> out;
  std::vector<bool> seen(ctx.n(), false);
  for (;;) {
    auto res = ctx.existence(
        [&](const Node& node) { return !seen[node.id()] && pred(node); },
        MessageTag::kProbe);
    if (!res.any) break;
    for (const auto& hit : res.senders) {
      if (!seen[hit.id]) {
        seen[hit.id] = true;
        out.push_back({hit.id, hit.value});
      }
    }
  }
  return out;
}

}  // namespace topkmon
