// DENSEPROTOCOL + SUBPROTOCOL (Sect. 5.2, Theorem 5.8).
//
// Competing against an offline algorithm that may itself use the error ε is
// hard (Theorem 5.1: Ω(σ/k) lower bound); this component implements the
// paper's upper-bound machinery. Around the pivot z (≈ the k-th largest
// value at start) nodes are partitioned into
//   V1 — certified "must be in any optimal output" (v > z/(1−ε) observed),
//   V3 — certified "cannot be in any optimal output" (v < (1−ε)z observed),
//   V2 — the ε-neighborhood in between; only V2 membership is ambiguous.
// The server maintains an integer-grid interval L ⊆ [(1−ε)z, z] with the
// invariant ℓ* ∈ L: any offline filter assignment that has not communicated
// must use a separator lower-bound ℓ* inside L. Each round broadcasts
// ℓ_r = midpoint(L) and u_r = ℓ_r/(1−ε); candidate sets S1 (observed above
// u_r) and S2 (observed below ℓ_r) track V2 nodes whose membership in the
// output is being contested. A node landing in S1 ∩ S2 — seen both above
// u_r and below ℓ_r — triggers the nested SUBPROTOCOL, which runs the same
// halving game on L' = L ∩ [(1−ε)z, ℓ_r] with its own candidate sets S'1,
// S'2 until it can either commit that node to V1/V3 or halve L. When L
// empties, no feasible ℓ* remains: OPT must have communicated, and the
// caller recomputes from scratch.
//
// Deviations from the paper's pseudo-code (which is under-specified in
// places) are marked [D#] in the implementation:
//   [D1] counts "observed above/below" use per-node last-reported values
//        re-checked against the *current* thresholds (the pseudo-code's
//        b.1 literally says u_r, but its proof, Lemma 5.6, argues with
//        u'_r'; we follow the proof).
//   [D2] halving on the integer grid: "lower half" keeps [lo, ⌊ℓ_r⌋]
//        (or [lo, ⌈ℓ_r⌉−1] when the bound is strict), "upper half" keeps
//        [⌈ℓ_r⌉, hi]; a single-point interval empties on any halving
//        (the paper's rule). WLOG OPT uses integer filter endpoints, so
//        the invariant ℓ* ∈ L is preserved.
//   [D3] if set bookkeeping ever fails to yield exactly k output
//        candidates, the component reports kInconsistent and the caller
//        recomputes — a safety valve that preserves correctness and costs
//        one probe (Lemma 5.2 argues it is unreachable).
#pragma once

#include <optional>

#include "protocols/generic_framework.hpp"
#include "sim/protocol.hpp"

namespace topkmon {

class DenseComponent {
 public:
  enum class Role : std::uint8_t { kV1, kV2, kV3 };

  enum class Outcome : std::uint8_t {
    kRunning,        ///< violation absorbed; keep monitoring
    kIntervalEmpty,  ///< L = ∅: OPT communicated; recompute from scratch
    kUniqueTopK,     ///< step 3.d: output unique; switch to TOP-K-PROTOCOL
    kInconsistent,   ///< [D3] bookkeeping failed; recompute from scratch
  };

  /// Seeds the component: pivot z := info.vk; classifies roles (probing the
  /// ε-neighborhood costs O(σ + k) expected on top of the probe the caller
  /// already paid). Requires the dense precondition vk1 ≥ (1−ε)·vk.
  Outcome begin(SimContext& ctx, const ProbeInfo& info);

  /// Handles one live violation; see Outcome.
  Outcome handle_violation(SimContext& ctx, NodeId id, Value value, Violation side);

  const OutputSet& output() const { return output_; }

  // Introspection for tests/benches.
  bool sub_active() const { return sub_active_; }
  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t sub_calls() const { return sub_calls_; }
  std::uint64_t sub_rounds() const { return sub_rounds_; }
  Role role(NodeId i) const { return role_[i]; }
  bool in_s1(NodeId i) const { return s1_[i]; }
  bool in_s2(NodeId i) const { return s2_[i]; }
  bool in_sp1(NodeId i) const { return sp1_[i]; }
  bool in_sp2(NodeId i) const { return sp2_[i]; }
  double pivot_z() const { return z_; }
  bool interval_empty() const { return l_lo_ > l_hi_; }
  Value interval_lo() const { return l_lo_; }
  Value interval_hi() const { return l_hi_; }
  Value sub_interval_lo() const { return sub_lo_; }
  Value sub_interval_hi() const { return sub_hi_; }
  std::size_t v1_count() const { return v1_count_; }
  std::size_t v3_count() const { return v3_count_; }

 private:
  // ---- main-protocol helpers ----
  double lr() const;  ///< midpoint of L (real-valued on the integer grid)
  double ur() const { return lr() / (1.0 - eps_); }
  void recompute_thresholds();
  bool rebuild_output();  ///< false → inconsistent [D3]
  void apply_filters(SimContext& ctx);
  Filter filter_for(const Node& node) const;
  std::size_t count_above_ur() const;
  std::size_t count_below_lr() const;
  bool unique_topk() const;

  enum class Half : std::uint8_t { kLowerStrict, kLowerInclusive, kUpper };
  /// Halves L per [D2]; returns false if L became empty.
  bool halve(Half h);

  Outcome after_halve(SimContext& ctx, Half h, bool clear_s1, bool clear_s2);
  Outcome finish_violation(SimContext& ctx);

  // ---- subprotocol ----
  Outcome start_sub(SimContext& ctx, NodeId trigger);
  Outcome handle_sub_violation(SimContext& ctx, NodeId id, Value value,
                               Violation side);
  double sub_lr() const;
  double sub_ur() const { return sub_lr() / (1.0 - eps_); }
  bool sub_halve(Half h);
  /// Ends the subprotocol; resumes the main round (filters rebroadcast by
  /// the caller via finish_violation / after_halve).
  void terminate_sub();
  std::size_t sub_count_above() const;
  std::size_t sub_count_below() const;
  void move_to_v1(NodeId id);
  void move_to_v3(NodeId id);

  double z_ = 0.0;
  double eps_ = 0.0;
  std::size_t k_ = 0;
  std::size_t n_ = 0;

  std::vector<Role> role_;
  std::vector<bool> s1_, s2_;
  std::vector<double> last_report_;  ///< NaN = never reported
  std::size_t v1_count_ = 0, v3_count_ = 0;

  // L on the integer grid; empty iff l_lo_ > l_hi_.
  Value l_lo_ = 0, l_hi_ = 0;
  double lr_cached_ = 0.0, ur_cached_ = 0.0;

  // Subprotocol state.
  bool sub_active_ = false;
  NodeId sub_trigger_ = 0;
  std::vector<bool> sp1_, sp2_;
  Value sub_lo_ = 0, sub_hi_ = 0;
  double sub_lr_cached_ = 0.0, sub_ur_cached_ = 0.0;
  std::optional<NodeId> sub_last_above_violator_;

  OutputSet output_;
  std::uint64_t rounds_ = 0;
  std::uint64_t sub_calls_ = 0;
  std::uint64_t sub_rounds_ = 0;
};

}  // namespace topkmon
