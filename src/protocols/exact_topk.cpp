#include "protocols/exact_topk.hpp"

#include "protocols/generic_framework.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace topkmon {

void ExactTopKMonitor::start(SimContext& ctx) {
  in_output_.assign(ctx.n(), false);
  begin_phase(ctx);
  // Values cannot move mid-step, and fresh probe filters fit the current
  // values by construction, so no drain is needed at start.
}

void ExactTopKMonitor::begin_phase(SimContext& ctx) {
  ++phases_;
  const ProbeInfo info = probe_top_k_plus_1(ctx);
  output_ = info.top_ids;
  in_output_.assign(ctx.n(), false);
  for (NodeId id : output_) in_output_[id] = true;
  lo_ = info.vk1;
  hi_ = info.vk;
  apply_filters(ctx);
}

void ExactTopKMonitor::apply_filters(SimContext& ctx) {
  // Midpoint separator; L is never empty when this is called.
  separator_ = midpoint(static_cast<double>(lo_), static_cast<double>(hi_));
  ctx.broadcast_filters([&](const Node& node) {
    return in_output_[node.id()] ? Filter::at_least(separator_)
                                 : Filter::at_most(separator_);
  });
}

void ExactTopKMonitor::on_step(SimContext& ctx) {
  drain_violations(ctx, [&](NodeId id, Value value, Violation side) {
    handle_violation(ctx, id, value, side);
  });
}

void ExactTopKMonitor::handle_violation(SimContext& ctx, NodeId id, Value value,
                                        Violation side) {
  if (side == Violation::kFromBelow) {
    // A complement node exceeded the separator: any valid separator must be
    // at least its value.
    TOPKMON_ASSERT(!in_output_[id]);
    lo_ = value;
  } else {
    // An output node dropped below the separator.
    TOPKMON_ASSERT(in_output_[id]);
    hi_ = value;
  }
  if (lo_ > hi_) {
    // L is empty: witnesses v^{t1}_{i1} < v^{t2}_{i2} for i1 ∈ F, i2 ∉ F,
    // so any filter-based algorithm (OPT included) must have communicated.
    begin_phase(ctx);
    return;
  }
  apply_filters(ctx);
}

}  // namespace topkmon
