// Half-error monitor (Corollary 5.9).
//
// Competitive against an offline algorithm restricted to error ε′ ≤ ε/2.
// The extra slack lets the online side replace DENSEPROTOCOL's interval
// halving by a *single* simulated dense round with the midpoint thresholds
//   ℓ = (1 − ε/2)·z          (midpoint of [(1−ε)z, z])
//   u = ℓ / (1 − ε),
// and commit V2 nodes directly on their first violation: above u ⇒ V1,
// below ℓ ⇒ V3 — each for O(1) messages, at most σ commits per phase. The
// phase ends (full recompute) when a committed node violates again, when
// |V1| > k, or when fewer than k candidates remain; if |V1| = k and
// |V3| = n − k the output is unique and the TOP-K-PROTOCOL core takes over.
// Every termination forces OPT(ε/2) to have communicated (Cor. 5.9's
// case analysis), giving O(σ + k log n + log log Δ + log 1/ε).
#pragma once

#include "protocols/dense_protocol.hpp"
#include "protocols/topk_protocol.hpp"
#include "sim/protocol.hpp"

namespace topkmon {

class HalfErrorMonitor final : public MonitoringProtocol {
 public:
  void start(SimContext& ctx) override;
  void on_step(SimContext& ctx) override;
  const OutputSet& output() const override;
  std::string_view name() const override { return "half_error"; }

  std::uint64_t phases() const { return phases_; }
  bool in_topk_mode() const { return mode_ == Mode::kTopK; }

 private:
  enum class Mode : std::uint8_t { kDenseRound, kTopK };

  void restart(SimContext& ctx);
  void enter_dense_round(SimContext& ctx, const ProbeInfo& info);
  /// Returns true if a full restart is required.
  bool handle_dense_violation(SimContext& ctx, NodeId id, Value value, Violation side);
  bool rebuild_output();
  void apply_filters(SimContext& ctx);

  Mode mode_ = Mode::kDenseRound;
  TopKComponent topk_;

  double z_ = 0.0;
  double lr_ = 0.0;  ///< (1 − ε/2)·z
  double ur_ = 0.0;  ///< lr / (1 − ε)
  std::size_t k_target_ = 0;
  std::vector<DenseComponent::Role> role_;
  std::size_t v1_count_ = 0, v3_count_ = 0;
  OutputSet output_;
  std::uint64_t phases_ = 0;
};

}  // namespace topkmon
