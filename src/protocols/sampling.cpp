#include "protocols/sampling.hpp"

#include "protocols/existence.hpp"
#include "util/assert.hpp"

namespace topkmon {

namespace {

SampleMaxOutcome sample_max_excluding(std::span<const Value> values,
                                      const std::vector<bool>& excluded, Rng& rng) {
  SampleMaxOutcome out;
  for (;;) {
    auto res = ExistenceProtocol::run(
        values.size(),
        [&](NodeId i) {
          if (excluded[i]) return false;
          if (!out.found) return true;
          return ranks_above(values[i], i, out.value, out.id);
        },
        [&](NodeId i) { return values[i]; }, rng);
    out.messages += res.messages;
    out.rounds += res.rounds;
    ++out.iterations;
    if (!res.any) break;
    for (const auto& hit : res.senders) {
      if (!out.found || ranks_above(hit.value, hit.id, out.value, out.id)) {
        out.found = true;
        out.id = hit.id;
        out.value = hit.value;
      }
    }
    ++out.messages;  // broadcast of the improved threshold
  }
  return out;
}

}  // namespace

SampleMaxOutcome sample_max_standalone(std::span<const Value> values, Rng& rng) {
  TOPKMON_ASSERT(!values.empty());
  std::vector<bool> excluded(values.size(), false);
  return sample_max_excluding(values, excluded, rng);
}

SampleMaxOutcome bisect_max_standalone(std::span<const Value> values, Value delta,
                                       Rng& rng) {
  TOPKMON_ASSERT(!values.empty());
  SampleMaxOutcome out;
  // Bisect [lo, hi] on "does any node exceed mid?"; every query is one
  // EXISTENCE run whose witnesses (if any) also advance the best estimate.
  Value lo = 0;
  Value hi = delta;
  while (lo < hi) {
    const Value mid = lo + (hi - lo) / 2;
    auto res = ExistenceProtocol::run(
        values.size(), [&](NodeId i) { return values[i] > mid; },
        [&](NodeId i) { return values[i]; }, rng);
    out.messages += res.messages;
    out.rounds += res.rounds;
    ++out.iterations;
    if (res.any) {
      for (const auto& hit : res.senders) {
        if (!out.found || ranks_above(hit.value, hit.id, out.value, out.id)) {
          out.found = true;
          out.id = hit.id;
          out.value = hit.value;
        }
      }
      lo = mid + 1;
    } else {
      hi = mid;
    }
    ++out.messages;  // broadcast of the next threshold
  }
  // `lo` is now the maximum value; converge on the top-ranked holder (ties
  // by lowest id) with sampling rounds restricted to the max-value set.
  for (;;) {
    auto res = ExistenceProtocol::run(
        values.size(),
        [&](NodeId i) {
          if (values[i] != lo) return false;
          if (!out.found) return true;
          return ranks_above(values[i], i, out.value, out.id);
        },
        [&](NodeId i) { return values[i]; }, rng);
    out.messages += res.messages;
    out.rounds += res.rounds;
    if (!res.any) break;
    for (const auto& hit : res.senders) {
      if (!out.found || ranks_above(hit.value, hit.id, out.value, out.id)) {
        out.found = true;
        out.id = hit.id;
        out.value = hit.value;
      }
    }
    ++out.messages;  // broadcast the improved holder
  }
  return out;
}

ProbeTopOutcome probe_top_standalone(std::span<const Value> values, std::size_t m,
                                     Rng& rng) {
  TOPKMON_ASSERT(m <= values.size());
  ProbeTopOutcome out;
  std::vector<bool> excluded(values.size(), false);
  for (std::size_t j = 0; j < m; ++j) {
    auto r = sample_max_excluding(values, excluded, rng);
    out.messages += r.messages;
    out.rounds += r.rounds;
    if (!r.found) break;
    excluded[r.id] = true;
    out.top.emplace_back(r.id, r.value);
  }
  return out;
}

}  // namespace topkmon
