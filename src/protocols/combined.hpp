// Combined ε-Top-k monitor (Theorem 5.8).
//
// At every (re)start the server probes the k+1 largest values. If
// v_{k+1} < (1−ε)·v_k the output is unique — the TOP-K-PROTOCOL core
// witnesses it (Theorem 4.5 machinery). Otherwise the ε-neighborhood is
// populated and the DENSEPROTOCOL core runs. Either core eventually reports
// that its interval emptied (OPT must have communicated) or that the regime
// flipped; the monitor then starts over. Against an offline algorithm with
// the same error ε this is O(σ² log(ε v_k) + σ log²(ε v_k) + log log Δ +
// log 1/ε)-competitive.
#pragma once

#include "protocols/dense_protocol.hpp"
#include "protocols/topk_protocol.hpp"
#include "sim/protocol.hpp"

namespace topkmon {

class CombinedMonitor final : public MonitoringProtocol {
 public:
  enum class Mode : std::uint8_t { kTopK, kDense };

  void start(SimContext& ctx) override;
  void on_step(SimContext& ctx) override;
  const OutputSet& output() const override;
  std::string_view name() const override { return "combined"; }

  Mode mode() const { return mode_; }
  std::uint64_t restarts() const { return restarts_; }
  std::uint64_t dense_entries() const { return dense_entries_; }
  std::uint64_t topk_entries() const { return topk_entries_; }
  const DenseComponent& dense() const { return dense_; }
  const TopKComponent& topk() const { return topk_; }

 private:
  void restart(SimContext& ctx);

  Mode mode_ = Mode::kTopK;
  TopKComponent topk_;
  DenseComponent dense_;
  std::uint64_t restarts_ = 0;
  std::uint64_t dense_entries_ = 0;
  std::uint64_t topk_entries_ = 0;
};

}  // namespace topkmon
