#include "protocols/dense_protocol.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "model/oracle.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace topkmon {

namespace {
constexpr double kNoReport = -1.0;
}

// ---------------------------------------------------------------------------
// Seeding
// ---------------------------------------------------------------------------

DenseComponent::Outcome DenseComponent::begin(SimContext& ctx, const ProbeInfo& info) {
  n_ = ctx.n();
  k_ = ctx.k();
  eps_ = ctx.epsilon();
  z_ = static_cast<double>(info.vk);
  TOPKMON_ASSERT_MSG(static_cast<double>(info.vk1) >= (1.0 - eps_) * z_,
                     "DenseComponent requires the dense precondition");

  role_.assign(n_, Role::kV3);
  s1_.assign(n_, false);
  s2_.assign(n_, false);
  sp1_.assign(n_, false);
  sp2_.assign(n_, false);
  last_report_.assign(n_, kNoReport);
  v1_count_ = v3_count_ = 0;
  sub_active_ = false;
  output_.clear();

  // Announce z (and ε, which is public) so nodes can self-classify; then
  // learn every node at or above the neighborhood floor. Costs one
  // broadcast + O(|V1| + |V2|) = O(k + σ) expected messages.
  ctx.broadcast(MessageTag::kOther);
  const double floor_v2 = (1.0 - eps_) * z_;
  auto high_nodes = enumerate_nodes(
      ctx, [&](const Node& node) { return static_cast<double>(node.value()) >= floor_v2; });
  for (const auto& hit : high_nodes) {
    last_report_[hit.id] = static_cast<double>(hit.value);
    if (clearly_larger(hit.value, info.vk, eps_)) {
      role_[hit.id] = Role::kV1;
    } else {
      role_[hit.id] = Role::kV2;
    }
  }
  for (NodeId i = 0; i < n_; ++i) {
    if (role_[i] == Role::kV1) ++v1_count_;
    if (role_[i] == Role::kV3) ++v3_count_;
  }

  // L0 = [(1−ε)z, z] on the integer grid; z is an observed (integer) value.
  l_lo_ = static_cast<Value>(std::ceil(floor_v2));
  l_hi_ = static_cast<Value>(std::floor(z_));
  TOPKMON_ASSERT(l_lo_ <= l_hi_);
  rounds_ = 0;
  recompute_thresholds();

  if (!rebuild_output()) return Outcome::kInconsistent;
  apply_filters(ctx);
  return Outcome::kRunning;
}

// ---------------------------------------------------------------------------
// Thresholds, interval halving [D2]
// ---------------------------------------------------------------------------

double DenseComponent::lr() const { return lr_cached_; }

void DenseComponent::recompute_thresholds() {
  lr_cached_ = midpoint(static_cast<double>(l_lo_), static_cast<double>(l_hi_));
  ur_cached_ = lr_cached_ / (1.0 - eps_);
}

bool DenseComponent::halve(Half h) {
  if (l_lo_ > l_hi_) return false;
  if (l_lo_ == l_hi_) {
    // Single-point interval empties on any halving (paper's rule).
    l_lo_ = 1;
    l_hi_ = 0;
    return false;
  }
  const double mid = midpoint(static_cast<double>(l_lo_), static_cast<double>(l_hi_));
  switch (h) {
    case Half::kLowerStrict:
      l_hi_ = static_cast<Value>(std::ceil(mid)) - 1;
      break;
    case Half::kLowerInclusive:
      l_hi_ = static_cast<Value>(std::floor(mid));
      break;
    case Half::kUpper:
      l_lo_ = static_cast<Value>(std::ceil(mid));
      break;
  }
  return l_lo_ <= l_hi_;
}

double DenseComponent::sub_lr() const { return sub_lr_cached_; }

bool DenseComponent::sub_halve(Half h) {
  if (sub_lo_ > sub_hi_) return false;
  if (sub_lo_ == sub_hi_) {
    sub_lo_ = 1;
    sub_hi_ = 0;
    return false;
  }
  const double mid =
      midpoint(static_cast<double>(sub_lo_), static_cast<double>(sub_hi_));
  switch (h) {
    case Half::kLowerStrict:
      sub_hi_ = static_cast<Value>(std::ceil(mid)) - 1;
      break;
    case Half::kLowerInclusive:
      sub_hi_ = static_cast<Value>(std::floor(mid));
      break;
    case Half::kUpper:
      sub_lo_ = static_cast<Value>(std::ceil(mid));
      break;
  }
  if (sub_lo_ > sub_hi_) return false;
  sub_lr_cached_ = midpoint(static_cast<double>(sub_lo_), static_cast<double>(sub_hi_));
  sub_ur_cached_ = sub_lr_cached_ / (1.0 - eps_);
  return true;
}

// ---------------------------------------------------------------------------
// Knowledge counters [D1]
// ---------------------------------------------------------------------------

std::size_t DenseComponent::count_above_ur() const {
  std::size_t c = v1_count_;
  for (NodeId i = 0; i < n_; ++i) {
    if (role_[i] == Role::kV2 && s1_[i] && last_report_[i] > ur_cached_) ++c;
  }
  return c;
}

std::size_t DenseComponent::count_below_lr() const {
  std::size_t c = v3_count_;
  for (NodeId i = 0; i < n_; ++i) {
    if (role_[i] == Role::kV2 && s2_[i] && last_report_[i] >= 0.0 &&
        last_report_[i] < lr_cached_) {
      ++c;
    }
  }
  return c;
}

std::size_t DenseComponent::sub_count_above() const {
  std::size_t c = v1_count_;
  for (NodeId i = 0; i < n_; ++i) {
    if (role_[i] == Role::kV2 && sp1_[i] && last_report_[i] > sub_ur_cached_) ++c;
  }
  return c;
}

std::size_t DenseComponent::sub_count_below() const {
  std::size_t c = v3_count_;
  for (NodeId i = 0; i < n_; ++i) {
    if (role_[i] == Role::kV2 && sp2_[i] && last_report_[i] >= 0.0 &&
        last_report_[i] < lr_cached_) {
      ++c;
    }
  }
  return c;
}

bool DenseComponent::unique_topk() const {
  return count_above_ur() == k_ && count_below_lr() == n_ - k_;
}

// ---------------------------------------------------------------------------
// Output and filters
// ---------------------------------------------------------------------------

bool DenseComponent::rebuild_output() {
  std::vector<bool> prev(n_, false);
  for (NodeId id : output_) prev[id] = true;

  OutputSet forced;
  std::vector<NodeId> pool;
  for (NodeId i = 0; i < n_; ++i) {
    if (role_[i] == Role::kV1) {
      forced.push_back(i);
    } else if (role_[i] == Role::kV2) {
      if (sub_active_) {
        if (sp1_[i]) {
          forced.push_back(i);  // S'1 \ S'2 and S'1 ∩ S'2 are both output
        } else if (!sp2_[i]) {
          pool.push_back(i);
        }
      } else {
        if (s1_[i] && !s2_[i]) {
          forced.push_back(i);
        } else if (!s1_[i] && !s2_[i]) {
          pool.push_back(i);
        }
      }
    }
  }
  if (forced.size() > k_ || forced.size() + pool.size() < k_) {
    return false;  // [D3]
  }
  // Fill with pool nodes, preferring current output members (stability).
  std::stable_sort(pool.begin(), pool.end(), [&](NodeId a, NodeId b) {
    if (prev[a] != prev[b]) return static_cast<bool>(prev[a]);
    return a < b;
  });
  output_ = forced;
  for (std::size_t i = 0; output_.size() < k_; ++i) {
    output_.push_back(pool[i]);
  }
  std::sort(output_.begin(), output_.end());
  return true;
}

Filter DenseComponent::filter_for(const Node& node) const {
  const NodeId i = node.id();
  const double z_over = z_ / (1.0 - eps_);
  const double z_under = (1.0 - eps_) * z_;
  if (sub_active_) {
    switch (role_[i]) {
      case Role::kV1: return Filter::at_least(lr_cached_);
      case Role::kV3: return Filter::at_most(sub_ur_cached_);
      case Role::kV2:
        if (sp1_[i] && !sp2_[i]) return Filter{lr_cached_, z_over};
        if (sp1_[i] && sp2_[i]) return Filter{sub_lr_cached_, z_over};
        if (!sp1_[i] && sp2_[i]) return Filter{z_under, sub_ur_cached_};
        return Filter{lr_cached_, sub_ur_cached_};
    }
  } else {
    switch (role_[i]) {
      case Role::kV1: return Filter::at_least(lr_cached_);
      case Role::kV3: return Filter::at_most(ur_cached_);
      case Role::kV2:
        if (s1_[i] && !s2_[i]) return Filter{lr_cached_, z_over};
        if (!s1_[i] && s2_[i]) return Filter{z_under, ur_cached_};
        // s1 && s2 only exists in the instant before start_sub broadcasts;
        // give it the widest V2 filter defensively.
        if (s1_[i] && s2_[i]) return Filter{z_under, z_over};
        return Filter{lr_cached_, ur_cached_};
    }
  }
  return Filter::all();
}

void DenseComponent::apply_filters(SimContext& ctx) {
  ctx.broadcast_filters([&](const Node& node) { return filter_for(node); });
}

// ---------------------------------------------------------------------------
// Role moves
// ---------------------------------------------------------------------------

void DenseComponent::move_to_v1(NodeId id) {
  TOPKMON_ASSERT(role_[id] == Role::kV2);
  role_[id] = Role::kV1;
  ++v1_count_;
  s1_[id] = s2_[id] = false;
  sp1_[id] = sp2_[id] = false;
}

void DenseComponent::move_to_v3(NodeId id) {
  TOPKMON_ASSERT(role_[id] == Role::kV2);
  role_[id] = Role::kV3;
  ++v3_count_;
  s1_[id] = s2_[id] = false;
  sp1_[id] = sp2_[id] = false;
}

// ---------------------------------------------------------------------------
// Main-protocol violation handling (paper step 3)
// ---------------------------------------------------------------------------

DenseComponent::Outcome DenseComponent::finish_violation(SimContext& ctx) {
  (void)ctx;
  if (unique_topk()) return Outcome::kUniqueTopK;
  if (!rebuild_output()) return Outcome::kInconsistent;
  return Outcome::kRunning;
}

DenseComponent::Outcome DenseComponent::after_halve(SimContext& ctx, Half h,
                                                    bool clear_s1, bool clear_s2) {
  if (clear_s1) std::fill(s1_.begin(), s1_.end(), false);
  if (clear_s2) std::fill(s2_.begin(), s2_.end(), false);
  if (!halve(h)) return Outcome::kIntervalEmpty;
  ++rounds_;
  recompute_thresholds();
  if (unique_topk()) return Outcome::kUniqueTopK;
  if (!rebuild_output()) return Outcome::kInconsistent;
  apply_filters(ctx);
  return Outcome::kRunning;
}

DenseComponent::Outcome DenseComponent::handle_violation(SimContext& ctx, NodeId id,
                                                         Value value, Violation side) {
  last_report_[id] = static_cast<double>(value);
  if (sub_active_) {
    return handle_sub_violation(ctx, id, value, side);
  }
  switch (role_[id]) {
    case Role::kV1:
      // Step 3.a: a must-be-output node fell below ℓ_r ⇒ ℓ* < ℓ_r.
      TOPKMON_ASSERT(side == Violation::kFromAbove);
      return after_halve(ctx, Half::kLowerStrict, /*clear_s1=*/false,
                         /*clear_s2=*/true);
    case Role::kV3:
      // Step 3.a': a must-not-be-output node rose above u_r ⇒ ℓ* ≥ ℓ_r.
      TOPKMON_ASSERT(side == Violation::kFromBelow);
      return after_halve(ctx, Half::kUpper, /*clear_s1=*/true, /*clear_s2=*/false);
    case Role::kV2:
      break;
  }
  const bool in1 = s1_[id];
  const bool in2 = s2_[id];
  if (!in1 && !in2) {
    if (side == Violation::kFromBelow) {
      // Step 3.b: crossed u_r from below.
      if (count_above_ur() + 1 > k_) {
        // 3.b.1: every k-subset must exclude a node above u_r ⇒ ℓ* ≥ ℓ_r.
        return after_halve(ctx, Half::kUpper, /*clear_s1=*/true, /*clear_s2=*/false);
      }
      s1_[id] = true;  // 3.b.2; the node derives its new filter itself
      ctx.set_filter_free(id, filter_for(ctx.nodes()[id]));
      return finish_violation(ctx);
    }
    // Step 3.b': dropped below ℓ_r.
    if (count_below_lr() + 1 > n_ - k_) {
      // 3.b'.1 ⇒ ℓ* ≤ ℓ_r.
      return after_halve(ctx, Half::kLowerInclusive, /*clear_s1=*/false,
                         /*clear_s2=*/true);
    }
    s2_[id] = true;  // 3.b'.2
    ctx.set_filter_free(id, filter_for(ctx.nodes()[id]));
    return finish_violation(ctx);
  }
  if (in1 && !in2) {
    if (side == Violation::kFromBelow) {
      // 3.c.1: observed above z/(1−ε) ⇒ must be in any optimal output.
      move_to_v1(id);
      ctx.set_filter_free(id, filter_for(ctx.nodes()[id]));
      return finish_violation(ctx);
    }
    // 3.c.2: now in S1 ∩ S2 — the ambiguous case SUBPROTOCOL resolves.
    s2_[id] = true;
    return start_sub(ctx, id);
  }
  if (!in1 && in2) {
    if (side == Violation::kFromAbove) {
      // 3.c'.1: observed below (1−ε)z ⇒ cannot be in any optimal output.
      move_to_v3(id);
      ctx.set_filter_free(id, filter_for(ctx.nodes()[id]));
      return finish_violation(ctx);
    }
    // 3.c'.2: S1 ∩ S2 from the other side.
    s1_[id] = true;
    return start_sub(ctx, id);
  }
  // in1 && in2 in the main protocol should not persist; resolve via sub.
  return start_sub(ctx, id);
}

// ---------------------------------------------------------------------------
// SUBPROTOCOL
// ---------------------------------------------------------------------------

DenseComponent::Outcome DenseComponent::start_sub(SimContext& ctx, NodeId trigger) {
  ++sub_calls_;
  sub_active_ = true;
  sub_trigger_ = trigger;
  sub_last_above_violator_.reset();
  // L'0 = L ∩ [(1−ε)z, ℓ_r] on the grid.
  sub_lo_ = l_lo_;
  sub_hi_ = std::min(l_hi_, static_cast<Value>(std::floor(lr_cached_)));
  TOPKMON_ASSERT(sub_lo_ <= sub_hi_);
  sub_lr_cached_ = midpoint(static_cast<double>(sub_lo_), static_cast<double>(sub_hi_));
  sub_ur_cached_ = sub_lr_cached_ / (1.0 - eps_);
  sp1_ = s1_;
  std::fill(sp2_.begin(), sp2_.end(), false);
  if (!rebuild_output()) {
    terminate_sub();
    return Outcome::kInconsistent;
  }
  apply_filters(ctx);  // one broadcast announcing the sub-round thresholds
  return Outcome::kRunning;
}

void DenseComponent::terminate_sub() { sub_active_ = false; }

DenseComponent::Outcome DenseComponent::handle_sub_violation(SimContext& ctx,
                                                             NodeId id, Value value,
                                                             Violation side) {
  (void)value;
  auto resume_main = [&]() -> Outcome {
    // If the trigger is still ambiguous (S1 ∩ S2), the sub must continue:
    // re-enter with the same trigger. Progress is guaranteed because every
    // sub termination moved some node out of V2 or halved an interval.
    if (role_[sub_trigger_] == Role::kV2 && s1_[sub_trigger_] && s2_[sub_trigger_]) {
      return start_sub(ctx, sub_trigger_);
    }
    if (unique_topk()) return Outcome::kUniqueTopK;
    if (!rebuild_output()) return Outcome::kInconsistent;
    apply_filters(ctx);
    return Outcome::kRunning;
  };

  auto sub_upper_half = [&]() -> Outcome {
    // Steps 3'.a / 3'.b.1: evidence ℓ* ≥ ℓ'_r'. S'1 is re-seeded from S1.
    sp1_ = s1_;
    if (!sub_halve(Half::kUpper)) {
      // L' empty: the last S'1∩S'2 from-above violator (or the trigger)
      // cannot be in any optimal output.
      const NodeId victim = sub_last_above_violator_.value_or(sub_trigger_);
      if (role_[victim] == Role::kV2) move_to_v3(victim);
      terminate_sub();
      return resume_main();
    }
    ++sub_rounds_;
    if (!rebuild_output()) {
      terminate_sub();
      return Outcome::kInconsistent;
    }
    apply_filters(ctx);
    return Outcome::kRunning;
  };

  auto finish_sub = [&]() -> Outcome {
    if (unique_topk()) return Outcome::kUniqueTopK;
    if (!rebuild_output()) return Outcome::kInconsistent;
    return Outcome::kRunning;
  };

  switch (role_[id]) {
    case Role::kV1:
      // 3'.a: terminate the sub; main-protocol 3.a semantics apply.
      TOPKMON_ASSERT(side == Violation::kFromAbove);
      terminate_sub();
      return after_halve(ctx, Half::kLowerStrict, /*clear_s1=*/false,
                         /*clear_s2=*/true);
    case Role::kV3:
      // 3'.a'.
      TOPKMON_ASSERT(side == Violation::kFromBelow);
      return sub_upper_half();
    case Role::kV2:
      break;
  }

  const bool p1 = sp1_[id];
  const bool p2 = sp2_[id];
  if (!p1 && !p2) {
    if (side == Violation::kFromBelow) {
      // 3'.b: crossed u'_r'.
      if (sub_count_above() + 1 > k_) {
        return sub_upper_half();  // 3'.b.1
      }
      sp1_[id] = true;  // 3'.b.2
      ctx.set_filter_free(id, filter_for(ctx.nodes()[id]));
      return finish_sub();
    }
    // 3'.b': dropped below ℓ_r.
    if (sub_count_below() + 1 > n_ - k_) {
      // 3'.b'.1: terminate; main lower half.
      terminate_sub();
      return after_halve(ctx, Half::kLowerInclusive, /*clear_s1=*/false,
                         /*clear_s2=*/true);
    }
    sp2_[id] = true;  // 3'.b'.2
    ctx.set_filter_free(id, filter_for(ctx.nodes()[id]));
    return finish_sub();
  }
  if (p1 && !p2) {
    if (side == Violation::kFromBelow) {
      // 3'.c.1: above z/(1−ε) ⇒ V1.
      move_to_v1(id);
      ctx.set_filter_free(id, filter_for(ctx.nodes()[id]));
      return finish_sub();
    }
    // 3'.c.2: joins S'1 ∩ S'2.
    sp2_[id] = true;
    ctx.set_filter_free(id, filter_for(ctx.nodes()[id]));
    return finish_sub();
  }
  if (p1 && p2) {
    if (side == Violation::kFromBelow) {
      // 3'.d.1: above z/(1−ε) ⇒ V1; the sub is done.
      move_to_v1(id);
      terminate_sub();
      return resume_main();
    }
    // 3'.d.2: below ℓ'_r' ⇒ ℓ* < ℓ'_r'; halve L' to the lower side.
    sub_last_above_violator_ = id;
    std::fill(sp2_.begin(), sp2_.end(), false);
    if (!sub_halve(Half::kLowerStrict)) {
      if (role_[id] == Role::kV2) move_to_v3(id);
      terminate_sub();
      return resume_main();
    }
    ++sub_rounds_;
    if (!rebuild_output()) {
      terminate_sub();
      return Outcome::kInconsistent;
    }
    apply_filters(ctx);
    return Outcome::kRunning;
  }
  // !p1 && p2 — 3'.c'.
  if (side == Violation::kFromAbove) {
    // 3'.c'.1: below (1−ε)z ⇒ V3.
    move_to_v3(id);
    ctx.set_filter_free(id, filter_for(ctx.nodes()[id]));
    return finish_sub();
  }
  // 3'.c'.2: joins S'1 ∩ S'2.
  sp1_[id] = true;
  ctx.set_filter_free(id, filter_for(ctx.nodes()[id]));
  return finish_sub();
}

}  // namespace topkmon
