// EXISTENCE protocol (Lemma 3.1).
//
// All nodes hold a bit; the server must decide the disjunction. Nodes with a
// 0 deactivate. In round r = 0, 1, …, ⌈log2 n⌉ every active node sends
// independently with probability p_r = 2^r / n (clamped to 1); the protocol
// stops at the first round in which at least one message is sent, or after
// the final round (in which active nodes send with probability 1, so silence
// proves the disjunction is false). Las Vegas: the answer is always correct;
// only the message count is random — O(1) in expectation (the paper bounds
// it by ~6), ⌈log2 n⌉ + 1 rounds worst case.
//
// Every sender attaches its id and current value (fits the O(log n + log Δ)
// message-size budget), which is what makes this usable for violation
// reporting and threshold queries: the server learns a non-empty *sample* of
// the witnesses, not just the bit.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "model/types.hpp"
#include "util/rng.hpp"

namespace topkmon {

struct ExistenceHit {
  NodeId id;
  Value value;
};

struct ExistenceResult {
  bool any = false;                  ///< the disjunction
  std::vector<ExistenceHit> senders; ///< witnesses heard in the stopping round
  std::uint64_t messages = 0;        ///< node→server messages actually sent
  std::uint64_t rounds = 0;          ///< rounds consumed (≤ ⌈log2 n⌉ + 1)
};

class ExistenceProtocol {
 public:
  /// Runs the protocol over nodes {0,…,n−1}. `bit(i)` is evaluated node-side
  /// (free); `value(i)` supplies the payload senders attach.
  static ExistenceResult run(std::size_t n, const std::function<bool(NodeId)>& bit,
                             const std::function<Value(NodeId)>& value, Rng& rng);

  /// Convenience for plain bit vectors (benches/tests).
  static ExistenceResult run(const std::vector<bool>& bits, Rng& rng);

  /// Number of rounds the protocol may use for n nodes: ⌈log2 n⌉ + 1.
  static std::uint64_t max_rounds(std::size_t n);
};

}  // namespace topkmon
