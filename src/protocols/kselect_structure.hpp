// KSELECTSTRUCTURE — the communication-efficient distributed top-k /
// k-select data structure of Biermeier–Feldkord–Malatyali–Meyer auf der
// Heide (arXiv:1709.07259), adapted to this repo's filter/EXISTENCE model.
//
// Where the source paper's protocols track top-k *positions* for a single
// k, this structure maintains enough sketch to answer, at every step and
// without further communication,
//   * the top-k-position query (MonitoringProtocol::output), and
//   * ε-approximate j-select queries for every 1 ≤ j ≤ k (the kKSelect
//     surface of QueryCapabilities): a value v̂ with (1−ε)·v_j ≤ v̂ ≤ v_j,
//     which in particular lies in the ε-neighborhood A_j(t).
//
// The maintenance core is a geometric BAND LADDER over the integer value
// domain: half-open bands [b_i, b_{i+1}) with b_0 = 0, b_1 = 1 and
// b_{i+1} = ⌊b_i/(1−ε)⌋ + 1, so every band satisfies the width condition
//   lo ≥ (1−ε)·(hi − 1).                                   (W)
// The ladder is a pure function of ε — both sides compute it locally, so a
// node can derive its own filter from its value plus the broadcast floor
// (ctx.set_filter_free, the DENSEPROTOCOL idiom; the value itself arrived
// as an accounted violation report).
//
// Server state: an ACTIVE set of nodes known to the band they occupy, and
// an activation floor act_lo (a band boundary). Invariants after every hook:
//   I1  active node i has filter [band_lo(i), band_hi(i) − 1] and its value
//       inside; band_lo(i) ≥ act_lo.
//   I2  inactive nodes share the filter [0, act_lo − 1] (none when
//       act_lo = 0, where everyone is active).
//   I3  |active| ≥ k.
// Filters are pairwise valid per Observation 2.2 directly from (W): any
// F ⊆ active chosen by descending band order gives lo_i ≥ (1−ε)·hi_j for
// all i ∈ F, j ∉ F — including inactive j, whose hi = act_lo − 1 < lo_i.
//
// Maintenance, entirely violation-driven (drain_violations):
//   * inactive node rises past act_lo − 1 → activate into band(v);
//   * active node leaves its band upward or sideways above the floor →
//     re-band (filter re-derived node-side, 0 server messages);
//   * active node falls below act_lo → deactivate; if |active| < k, lower
//     the floor band by band, EXISTENCE-enumerating each uncovered band
//     (O(#found + 1) expected messages), then one filter broadcast;
//   * |active| > max(4k, 8) → raise the floor to the 2k-th active band and
//     drop the tail with one filter broadcast (compaction keeps the
//     structure size O(k) between floor moves).
//
// Query answers: order active nodes by (band_lo desc, last report desc, id
// asc); F = first k, and kselect(j) = band_lo of the j-th. Bounds: at least
// j actives have value ≥ band_lo(c_j) (upper), and some true top-j node d
// has band ≤ band(c_j) — active or below the floor ≤ band(c_j) — so (W)
// gives band_lo(c_j) ≥ (1−ε)·(band_hi − 1) ≥ (1−ε)·v_d ≥ (1−ε)·v_j (lower).
// With ε = 0 the ladder degenerates to unit bands and both queries are
// exact. Very small ε > 0 would need a huge ladder; ladders past
// kMaxLadderSize boundaries fall back to unit bands (deterministic in ε
// alone, so both sides agree) — correct, merely chattier.
#pragma once

#include <cstdint>
#include <vector>

#include "model/band_ladder.hpp"
#include "protocols/generic_framework.hpp"
#include "sim/protocol.hpp"

namespace topkmon {

class KSelectStructure : public MonitoringProtocol, public QueryCapabilities {
 public:
  void start(SimContext& ctx) override;
  void on_step(SimContext& ctx) override;
  const OutputSet& output() const override { return output_; }
  const QueryCapabilities* capabilities() const override { return this; }
  std::string_view name() const override { return "kselect"; }

  bool supports(QueryKind kind) const override {
    return kind == QueryKind::kTopK || kind == QueryKind::kKSelect;
  }
  std::size_t kselect_max_rank() const override { return k_; }
  Value kselect(std::size_t j) const override;

  // Introspection for tests/benches.
  const BandLadder& ladder() const { return ladder_; }
  std::size_t active_count() const { return active_count_; }
  bool is_active(NodeId i) const { return active_[i] != 0; }
  Value node_band_lo(NodeId i) const { return band_lo_[i]; }
  Value activation_floor() const { return act_lo_; }
  std::uint64_t rebuilds() const { return rebuilds_; }
  std::uint64_t floor_lowerings() const { return floor_lowerings_; }
  std::uint64_t floor_raises() const { return floor_raises_; }

 private:
  void handle(SimContext& ctx, NodeId id, Value value, Violation side);
  void activate(NodeId id, Value value);
  void deactivate(NodeId id);
  /// Lowers act_lo_ band by band until |active| ≥ k (reaches 0 in the worst
  /// case, where every node activates). Caller broadcasts filters after.
  void refill(SimContext& ctx);
  /// Raises act_lo_ to the 2k-th active band when |active| > max(4k, 8);
  /// true if the floor moved (caller broadcasts filters).
  bool compact_if_needed();
  void broadcast_all_filters(SimContext& ctx);
  Filter band_filter(NodeId id) const;
  Filter inactive_filter() const;
  /// Rebuilds output_ + estimates_ from the active set (band_lo desc, last
  /// report desc, id asc); no-op unless a violation dirtied the state.
  void refresh_queries();

  BandLadder ladder_;
  std::size_t n_ = 0;
  std::size_t k_ = 0;
  Value act_lo_ = 0;             ///< activation floor (band boundary; 0 = all active)
  std::vector<std::uint8_t> active_;
  std::vector<Value> band_lo_;   ///< per-node band, valid while active
  std::vector<Value> band_hi_;
  std::vector<Value> last_report_;
  std::size_t active_count_ = 0;
  std::vector<NodeId> order_;    ///< scratch: actives in query order
  OutputSet output_;
  std::vector<Value> estimates_; ///< kselect(j) = estimates_[j−1]
  bool dirty_ = false;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t floor_lowerings_ = 0;
  std::uint64_t floor_raises_ = 0;
};

}  // namespace topkmon
