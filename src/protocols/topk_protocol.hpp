// TOP-K-PROTOCOL (Sect. 4 of the paper, Theorem 4.5).
//
// Strategy: compute F(t) once (probe of the k+1 largest values), then
// *witness* its correctness cheaply. The server maintains an interval
// L = [ℓ, u] that is guaranteed to contain the lower filter endpoint ℓ* any
// non-communicating exact offline algorithm must have used (invariant
// L* ⊆ L). Four consecutive regimes choose the broadcast separator m:
//
//   (P1)  log log u > log log ℓ + 1   → A1: m = ℓ0 + 2^(2^r) after r
//         violations — doubly-exponential probing; ≤ O(log log Δ) steps.
//   (P2)  ¬P1 ∧ u > 4ℓ               → A2: m = 2^mid, mid the midpoint of
//         [log ℓ, log u] — geometric halving; O(1) steps.
//   (P3)  u ≤ 4ℓ ∧ (1−ε)·u > ℓ       → A3: arithmetic midpoint; the ε-slack
//         stops this after O(log 1/ε) steps.
//   (P4)  (1−ε)·u ≤ ℓ                → overlapping filters F1 = [ℓ, ∞),
//         F2 = [0, u] are valid w.r.t. ε; wait for the crossing violation.
//
// Any violation shrinks L (from below: ℓ := v; from above: u := v); when
// ℓ > u the interval — and with it L* — is empty, so the exact OPT must
// have communicated: the protocol recomputes from scratch. Total cost per
// phase: O(k log n + log log Δ + log 1/ε) expected (Theorem 4.5).
//
// `TopKComponent` is the reusable core (the combined Theorem 5.8 monitor
// embeds it); `TopKProtocol` is the self-restarting MonitoringProtocol.
#pragma once

#include "protocols/generic_framework.hpp"
#include "sim/protocol.hpp"

namespace topkmon {

class TopKComponent {
 public:
  enum class Phase : std::uint8_t { kA1, kA2, kA3, kP4 };

  /// Seeds the component from a fresh probe (pays O(k log n)) and installs
  /// filters for the current values.
  void begin(SimContext& ctx);

  /// Seeds from an already-paid probe (used by the combined monitor).
  void begin_from_probe(SimContext& ctx, const ProbeInfo& info);

  /// Handles one live violation. Returns false while the component keeps
  /// witnessing F(t); returns true when L became empty (the caller must
  /// recompute — OPT provably communicated).
  bool handle_violation(SimContext& ctx, NodeId id, Value value, Violation side);

  const OutputSet& output() const { return output_; }
  Phase phase() const { return phase_; }
  double lower() const { return l_; }
  double upper() const { return u_; }
  std::uint64_t violations_handled() const { return violations_; }

  /// Phase predicate (P1), exposed for unit tests.
  static bool p1_holds(double l, double u);

 private:
  void select_phase(SimContext& ctx);
  double choose_separator() const;
  void apply_filters(SimContext& ctx);

  OutputSet output_;
  std::vector<bool> in_output_;
  double l_ = 0.0;   ///< current lower end of L
  double u_ = 0.0;   ///< current upper end of L
  double l0_ = 0.0;  ///< ℓ at phase A1 entry (base of the 2^(2^r) probes)
  std::uint64_t r_ = 0;       ///< violations observed inside A1
  bool left_a1_ = false;      ///< P1 is never re-entered once left
  Phase phase_ = Phase::kA1;
  double separator_ = 0.0;
  std::uint64_t violations_ = 0;
};

class TopKProtocol final : public MonitoringProtocol {
 public:
  void start(SimContext& ctx) override;
  void on_step(SimContext& ctx) override;
  const OutputSet& output() const override { return core_.output(); }
  std::string_view name() const override { return "topk_protocol"; }

  const TopKComponent& core() const { return core_; }
  /// Number of from-scratch computations (1 + #restarts); each restart
  /// witnesses one forced OPT communication.
  std::uint64_t phases() const { return phases_; }

 private:
  TopKComponent core_;
  std::uint64_t phases_ = 0;
};

}  // namespace topkmon
