#include "protocols/count_distinct.hpp"

#include "protocols/generic_framework.hpp"
#include "protocols/threshold.hpp"
#include "util/assert.hpp"

namespace topkmon {

Filter CountDistinctMonitor::band_filter(Value v) const {
  // Bands are half-open; filters are closed intervals on the integer grid.
  return Filter{static_cast<double>(ladder_.band_lo(v)),
                static_cast<double>(ladder_.band_hi(v) - 1)};
}

void CountDistinctMonitor::start(SimContext& ctx) {
  ladder_.reset(ctx.epsilon());
  band_lo_.assign(ctx.n(), 0);
  sketch_.clear();
  output_.clear();

  // Deterministic seed collect (n messages, no RNG), folded into per-stripe
  // shard sketches and merged — the combining step a sharded data plane
  // performs; merge order cannot matter (commutative/associative).
  const auto reports = collect_all_deterministic(ctx);
  std::vector<DistinctSketch> stripes((ctx.n() + kSketchStripe - 1) / kSketchStripe);
  for (const auto& [id, value] : reports) {
    band_lo_[id] = ladder_.band_lo(value);
    stripes[id / kSketchStripe].add(band_lo_[id]);
  }
  for (const DistinctSketch& stripe : stripes) {
    sketch_.merge(stripe);
  }

  // One broadcast: every node derives the filter of its own band locally
  // from the ladder (a pure function of ε) — nothing node-specific travels.
  ctx.broadcast_filters([this](const Node& node) {
    return band_filter(node.value());
  });
}

void CountDistinctMonitor::on_step(SimContext& ctx) {
  drain_violations(ctx, [&](NodeId id, Value value, Violation side) {
    (void)side;
    // The node left its band; the accounted violation report carried the new
    // value, the node re-derives its own filter from it (zero server
    // messages), and the sketch moves one occupancy between bands.
    sketch_.remove(band_lo_[id]);
    band_lo_[id] = ladder_.band_lo(value);
    sketch_.add(band_lo_[id]);
    ctx.set_filter_free(id, band_filter(value));
  });
}

}  // namespace topkmon
