#include "protocols/topk_protocol.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace topkmon {

bool TopKComponent::p1_holds(double l, double u) {
  return loglog2(u) > loglog2(l) + 1.0;
}

void TopKComponent::begin(SimContext& ctx) {
  begin_from_probe(ctx, probe_top_k_plus_1(ctx));
}

void TopKComponent::begin_from_probe(SimContext& ctx, const ProbeInfo& info) {
  output_ = info.top_ids;
  in_output_.assign(ctx.n(), false);
  for (NodeId id : output_) in_output_[id] = true;
  l_ = static_cast<double>(info.vk1);
  u_ = static_cast<double>(info.vk);
  l0_ = l_;
  r_ = 0;
  left_a1_ = false;
  select_phase(ctx);
}

void TopKComponent::select_phase(SimContext& ctx) {
  TOPKMON_ASSERT_MSG(l_ <= u_, "select_phase requires non-empty L");
  if (!left_a1_ && p1_holds(l_, u_)) {
    phase_ = Phase::kA1;
  } else if (u_ > 4.0 * l_) {
    left_a1_ = true;
    phase_ = Phase::kA2;
  } else if ((1.0 - ctx.epsilon()) * u_ > l_) {
    left_a1_ = true;
    phase_ = Phase::kA3;
  } else {
    left_a1_ = true;
    phase_ = Phase::kP4;
  }
  apply_filters(ctx);
}

double TopKComponent::choose_separator() const {
  switch (phase_) {
    case Phase::kA1: {
      // m = ℓ0 + 2^(2^r); both exponentiations saturate so that values past
      // Δ simply trigger the from-above transition out of A1.
      const double inner = pow2_saturated(static_cast<double>(r_), 63.0);
      return l0_ + pow2_saturated(inner);
    }
    case Phase::kA2: {
      const double mid = midpoint(log2_clamped(l_), log2_clamped(u_));
      return std::exp2(mid);
    }
    case Phase::kA3:
      return midpoint(l_, u_);
    case Phase::kP4:
      return 0.0;  // unused
  }
  return 0.0;
}

void TopKComponent::apply_filters(SimContext& ctx) {
  if (phase_ == Phase::kP4) {
    // Overlapping filters; valid because (1−ε)·u ≤ ℓ (property P4).
    const double lo = l_;
    const double hi = u_;
    ctx.broadcast_filters([&, lo, hi](const Node& node) {
      return in_output_[node.id()] ? Filter::at_least(lo) : Filter::at_most(hi);
    });
    return;
  }
  separator_ = choose_separator();
  const double m = separator_;
  ctx.broadcast_filters([&, m](const Node& node) {
    return in_output_[node.id()] ? Filter::at_least(m) : Filter::at_most(m);
  });
}

bool TopKComponent::handle_violation(SimContext& ctx, NodeId id, Value value,
                                     Violation side) {
  ++violations_;
  if (phase_ == Phase::kA1) {
    ++r_;
  }
  if (side == Violation::kFromBelow) {
    // A complement node exceeded its upper bound: the exact OPT's separator
    // must lie at or above the reported value (Theorem 4.5's invariant).
    TOPKMON_ASSERT(!in_output_[id]);
    l_ = static_cast<double>(value);
  } else {
    // An output node fell below its lower bound: OPT's separator must lie
    // at or below the reported value.
    TOPKMON_ASSERT(in_output_[id]);
    u_ = static_cast<double>(value);
    // Lemma 4.1: a from-above violation ends regime A1 (log log u' is then
    // within 1 of log log ℓ'). Enforce the exit even in boundary cases so a
    // node below every future A1 probe cannot pin the protocol in A1.
    left_a1_ = true;
  }
  if (l_ > u_) {
    return true;  // L empty — caller recomputes from scratch
  }
  select_phase(ctx);
  return false;
}

void TopKProtocol::start(SimContext& ctx) {
  ++phases_;
  core_.begin(ctx);
  // A1 may install a probe separator above the current k-th value (invalid
  // filters are allowed); resolve the induced violations immediately.
  on_step(ctx);
}

void TopKProtocol::on_step(SimContext& ctx) {
  drain_violations(ctx, [&](NodeId id, Value value, Violation side) {
    if (core_.handle_violation(ctx, id, value, side)) {
      ++phases_;
      core_.begin(ctx);
    }
  });
}

}  // namespace topkmon
