#include "protocols/naive.hpp"

#include "model/oracle.hpp"

namespace topkmon {

void NaiveCentralMonitor::start(SimContext& ctx) {
  known_.resize(ctx.n());
  collect_and_recompute(ctx);
}

void NaiveCentralMonitor::on_step(SimContext& ctx) { collect_and_recompute(ctx); }

void NaiveCentralMonitor::collect_and_recompute(SimContext& ctx) {
  for (NodeId i = 0; i < ctx.n(); ++i) {
    known_[i] = ctx.report_value(i, MessageTag::kOther);
  }
  output_ = Oracle::top_k(known_, ctx.k());
  // One broadcast re-arms the point-filter rule for the new step.
  ctx.broadcast_filters([&](const Node& node) {
    return Filter::point(static_cast<double>(known_[node.id()]));
  });
}

void NaiveChangeMonitor::start(SimContext& ctx) {
  known_.resize(ctx.n());
  for (NodeId i = 0; i < ctx.n(); ++i) {
    known_[i] = ctx.report_value(i, MessageTag::kOther);
  }
  recompute(ctx);
}

void NaiveChangeMonitor::on_step(SimContext& ctx) {
  // Point filters make "value changed" and "filter violated" identical; the
  // nodes report *directly* (no EXISTENCE batching) — this is the ablation
  // point of experiment E8a.
  bool any = false;
  for (const auto& node : ctx.nodes()) {
    if (node.violating()) {
      known_[node.id()] = ctx.report_value(node.id(), MessageTag::kViolation);
      any = true;
    }
  }
  if (any) {
    recompute(ctx);
  }
}

void NaiveChangeMonitor::recompute(SimContext& ctx) {
  output_ = Oracle::top_k(known_, ctx.k());
  ctx.broadcast_filters([&](const Node& node) {
    return Filter::point(static_cast<double>(known_[node.id()]));
  });
}

}  // namespace topkmon
