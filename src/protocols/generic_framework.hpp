// Shared machinery for the Sect. 3 "generic approach":
//   * probing the k+1 largest values to seed an interval L,
//   * the per-step violation drain loop (server processes one live
//     violation at a time; stale reports are ignored, as the paper allows),
//   * EXISTENCE-based enumeration of all nodes matching a predicate
//     (used by DENSEPROTOCOL to collect the ε-neighborhood at start-up).
#pragma once

#include <functional>

#include "model/filter.hpp"
#include "sim/context.hpp"

namespace topkmon {

struct ProbeInfo {
  /// Probed nodes in descending rank order; size k+1 (or n if n == k+1... );
  std::vector<SimContext::ProbeResult> ranked;
  OutputSet top_ids;  ///< ids of the k highest, sorted ascending
  Value vk = 0;       ///< k-th largest value
  Value vk1 = 0;      ///< (k+1)-st largest value
};

/// Computes the nodes holding the k+1 largest values (Lemma 2.6 applied
/// k+1 times): O(k log n) messages expected. Requires k < n.
ProbeInfo probe_top_k_plus_1(SimContext& ctx);

/// Runs the per-step violation loop: repeatedly EXISTENCE-collects
/// violations and hands exactly one *live* report to `handler`
/// (id, reported value, direction). The handler must change state so the
/// violation cannot recur unboundedly; the loop asserts after `max_iters`
/// iterations to catch non-progressing protocols in tests.
void drain_violations(SimContext& ctx,
                      const std::function<void(NodeId, Value, Violation)>& handler,
                      std::uint64_t max_iters = 1u << 20);

/// Enumerates *all* nodes satisfying `pred` by repeated EXISTENCE runs with
/// node-side dedup; O(#found + 1) expected messages. Returns (id, value).
std::vector<SimContext::ProbeResult> enumerate_nodes(
    SimContext& ctx, const std::function<bool(const Node&)>& pred);

}  // namespace topkmon
