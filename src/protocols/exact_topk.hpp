// Exact Top-k-Position Monitoring baseline (Corollary 3.3).
//
// Phases: probe the k+1 largest values (O(k log n) expected), seed
// L = [v_{k+1}, v_k], and repeatedly broadcast the *midpoint* m of L as the
// separator: output-side nodes get [m, ∞), the rest [0, m]. A violation
// from below (a low node exceeding m) raises L's lower end to the reported
// value; a violation from above (an output node dropping under m) lowers
// L's upper end. L at least halves per violation, so a phase sees
// O(log Δ) violations; when L empties the phase ends and the protocol
// recomputes from scratch — at which point the offline optimum provably
// communicated at least once. Combined with EXISTENCE-mediated violation
// reporting this realizes the improved O(k log n + log Δ) competitiveness
// (the paper's improvement over the O(k log n + log Δ log n) of [6]).
//
// This protocol solves the *exact* problem; it is correct for any ε ≥ 0.
#pragma once

#include "sim/protocol.hpp"

namespace topkmon {

class ExactTopKMonitor final : public MonitoringProtocol {
 public:
  void start(SimContext& ctx) override;
  void on_step(SimContext& ctx) override;
  const OutputSet& output() const override { return output_; }
  std::string_view name() const override { return "exact_topk"; }

  /// Completed phases (each is a witness that OPT communicated once).
  std::uint64_t phases() const { return phases_; }

 private:
  void begin_phase(SimContext& ctx);
  void apply_filters(SimContext& ctx);
  void handle_violation(SimContext& ctx, NodeId id, Value value, Violation side);

  OutputSet output_;
  std::vector<bool> in_output_;
  // L = [lo_, hi_] on the integer grid; empty when lo_ > hi_.
  Value lo_ = 0;
  Value hi_ = 0;
  double separator_ = 0.0;
  std::uint64_t phases_ = 0;
};

}  // namespace topkmon
