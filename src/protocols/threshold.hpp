// Threshold queries on top of EXISTENCE (Corollary 3.2 and the subtasks the
// paper lists: "validating that all nodes are within their filters,
// identifying that there is some filter-violation or whether there are
// nodes that have a higher value than a certain threshold").
//
// These are the building blocks a deployment would actually call between
// protocol phases; each costs O(1) messages in expectation.
#pragma once

#include <optional>

#include "sim/context.hpp"

namespace topkmon {

/// Is any node's value strictly above `threshold`? O(1) msgs expected.
bool any_above(SimContext& ctx, double threshold);

/// Is any node's value strictly below `threshold`? O(1) msgs expected.
bool any_below(SimContext& ctx, double threshold);

/// Are all nodes currently inside their filters? O(1) msgs expected
/// (zero messages when quiescent).
bool all_quiet(SimContext& ctx);

/// Counts the nodes with value >= threshold by EXISTENCE-enumeration;
/// O(count + 1) messages expected. Intended for small counts (the dense
/// protocol's neighborhood collection); returns the ids and values.
std::vector<SimContext::ProbeResult> collect_at_least(SimContext& ctx,
                                                      double threshold);

/// Deterministic O(1)-round, n-message fallback: every node reports once.
/// Used to cross-check the randomized primitives in tests and to provide a
/// deterministic mode for debugging.
std::vector<SimContext::ProbeResult> collect_all_deterministic(SimContext& ctx);

}  // namespace topkmon
