// Standalone sampling protocols (Lemma 2.6) over plain value vectors.
//
// These mirror SimContext::sample_max / probe_top but run outside a
// simulator, so benches and tests can measure the message cost of a single
// invocation in isolation (experiment E2).
//
// Protocol (threshold sampling): the server repeatedly runs EXISTENCE over
// "my value ranks above the announced best"; the senders of the stopping
// round are a random non-empty sample of the active set, the server takes
// their maximum and broadcasts it as the new threshold. Each iteration costs
// O(1) expected node→server messages plus one broadcast and halves the
// active set in expectation, giving O(log n) messages overall — the bound
// Lemma 2.6 requires from [6].
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "model/types.hpp"
#include "util/rng.hpp"

namespace topkmon {

struct SampleMaxOutcome {
  NodeId id = 0;
  Value value = 0;
  bool found = false;
  std::uint64_t messages = 0;  ///< node→server + broadcast messages
  std::uint64_t rounds = 0;    ///< EXISTENCE rounds consumed
  std::uint64_t iterations = 0;
};

/// Maximum (value, id tie-break) over all nodes. O(log n) messages expected.
SampleMaxOutcome sample_max_standalone(std::span<const Value> values, Rng& rng);

struct ProbeTopOutcome {
  std::vector<std::pair<NodeId, Value>> top;  ///< descending rank order
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;
};

/// Top-m nodes by repeated sample_max with exclusion. O(m log n) expected.
ProbeTopOutcome probe_top_standalone(std::span<const Value> values, std::size_t m,
                                     Rng& rng);

/// Ablation comparator: deterministic bisection on the VALUE domain — the
/// server halves [0, Δ] with EXISTENCE threshold queries until one node
/// remains. O(log Δ) expected messages instead of Lemma 2.6's O(log n);
/// with Δ ≫ n the sampling protocol wins (experiment E8d). Requires the
/// maximum value to be unique or resolved by the final id round.
SampleMaxOutcome bisect_max_standalone(std::span<const Value> values, Value delta,
                                       Rng& rng);

}  // namespace topkmon
