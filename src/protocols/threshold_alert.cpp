#include "protocols/threshold_alert.hpp"

#include "protocols/generic_framework.hpp"
#include "util/assert.hpp"

namespace topkmon {

Filter ThresholdAlertMonitor::above_filter() const {
  // Values are integers, so "strictly above T" is the closed interval
  // [T + 1, Δ]. T < 2^48 < 2^53 keeps the double arithmetic exact.
  return Filter{static_cast<double>(bound_) + 1.0,
                static_cast<double>(kMaxObservableValue)};
}

Filter ThresholdAlertMonitor::below_filter() const {
  return Filter{0.0, static_cast<double>(bound_)};
}

void ThresholdAlertMonitor::start(SimContext& ctx) {
  bound_ = ctx.threshold();
  above_.assign(ctx.n(), 0);
  above_count_ = 0;
  output_.clear();

  // EXISTENCE-enumeration of the initial above-set: O(|above| + 1) expected
  // messages, independent of n (Lemma 3.1) — the alert usually watches a
  // bound few nodes exceed.
  const Value bound = bound_;
  const auto found = enumerate_nodes(ctx, [bound](const Node& node) {
    return node.value() > bound;
  });
  for (const auto& [id, value] : found) {
    (void)value;
    above_[id] = 1;
    ++above_count_;
  }
  // One broadcast: each node derives its side's filter from the public
  // bound and its own value.
  ctx.broadcast_filters([this](const Node& node) {
    return node.value() > bound_ ? above_filter() : below_filter();
  });
}

void ThresholdAlertMonitor::on_step(SimContext& ctx) {
  drain_violations(ctx, [&](NodeId id, Value value, Violation side) {
    (void)side;
    // A violation is exactly a side flip: the report is accounted, the new
    // filter is node-side derivable from the public bound.
    if (above_[id]) {
      TOPKMON_ASSERT(value <= bound_);
      above_[id] = 0;
      --above_count_;
      ctx.set_filter_free(id, below_filter());
    } else {
      TOPKMON_ASSERT(value > bound_);
      above_[id] = 1;
      ++above_count_;
      ctx.set_filter_free(id, above_filter());
    }
  });
}

}  // namespace topkmon
