#include "protocols/existence.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace topkmon {

std::uint64_t ExistenceProtocol::max_rounds(std::size_t n) {
  if (n <= 1) return 1;
  return static_cast<std::uint64_t>(ilog2_ceil(n)) + 1;
}

ExistenceResult ExistenceProtocol::run(std::size_t n,
                                       const std::function<bool(NodeId)>& bit,
                                       const std::function<Value(NodeId)>& value,
                                       Rng& rng) {
  TOPKMON_ASSERT(n > 0);
  ExistenceResult res;

  // Node-side deactivation (free, local): collect the active set once. The
  // adversary model is per-time-step, so the bit cannot change mid-protocol.
  std::vector<NodeId> active;
  for (NodeId i = 0; i < n; ++i) {
    if (bit(i)) active.push_back(i);
  }

  const std::uint64_t last_round = max_rounds(n) - 1;  // rounds 0 .. last_round
  for (std::uint64_t r = 0; r <= last_round; ++r) {
    ++res.rounds;
    if (active.empty()) {
      // No node will ever send; the server waits out the schedule. Silence
      // through the final (p=1) round proves the disjunction is false.
      continue;
    }
    const double p = std::min(1.0, static_cast<double>(std::uint64_t{1} << std::min<std::uint64_t>(r, 63)) /
                                       static_cast<double>(n));
    for (NodeId i : active) {
      if (rng.bernoulli(p)) {
        res.senders.push_back({i, value(i)});
      }
    }
    if (!res.senders.empty()) {
      res.any = true;
      res.messages = res.senders.size();
      return res;
    }
  }
  res.any = false;
  TOPKMON_ASSERT_MSG(active.empty(), "final round has p=1; active nodes must send");
  return res;
}

ExistenceResult ExistenceProtocol::run(const std::vector<bool>& bits, Rng& rng) {
  return run(
      bits.size(), [&](NodeId i) { return static_cast<bool>(bits[i]); },
      [&](NodeId i) { return static_cast<Value>(i); }, rng);
}

}  // namespace topkmon
