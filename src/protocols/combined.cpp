#include "protocols/combined.hpp"

#include "util/assert.hpp"

namespace topkmon {

const OutputSet& CombinedMonitor::output() const {
  return mode_ == Mode::kTopK ? topk_.output() : dense_.output();
}

void CombinedMonitor::start(SimContext& ctx) {
  restart(ctx);
  // The dense component's initial round filters may exclude some current
  // V2 values (the paper's invalid-filter device); drain them now so the
  // step contract (quiescence) holds from t = 0.
  on_step(ctx);
}

void CombinedMonitor::restart(SimContext& ctx) {
  ++restarts_;
  // Bounded retry: a restart can immediately report kInconsistent (e.g. a
  // pathological tie pattern); re-probing with fresh randomness converges,
  // and the bound only exists to surface protocol bugs in tests.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const ProbeInfo info = probe_top_k_plus_1(ctx);
    if (static_cast<double>(info.vk1) <
        (1.0 - ctx.epsilon()) * static_cast<double>(info.vk)) {
      mode_ = Mode::kTopK;
      ++topk_entries_;
      topk_.begin_from_probe(ctx, info);
      return;
    }
    mode_ = Mode::kDense;
    ++dense_entries_;
    if (dense_.begin(ctx, info) == DenseComponent::Outcome::kRunning) {
      return;
    }
  }
  TOPKMON_ASSERT_MSG(false, "CombinedMonitor could not (re)initialize");
}

void CombinedMonitor::on_step(SimContext& ctx) {
  drain_violations(ctx, [&](NodeId id, Value value, Violation side) {
    if (mode_ == Mode::kTopK) {
      if (topk_.handle_violation(ctx, id, value, side)) {
        restart(ctx);
      }
      return;
    }
    switch (dense_.handle_violation(ctx, id, value, side)) {
      case DenseComponent::Outcome::kRunning:
        return;
      case DenseComponent::Outcome::kIntervalEmpty:
      case DenseComponent::Outcome::kUniqueTopK:
      case DenseComponent::Outcome::kInconsistent:
        restart(ctx);
        return;
    }
  });
}

}  // namespace topkmon
