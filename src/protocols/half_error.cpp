#include "protocols/half_error.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace topkmon {

const OutputSet& HalfErrorMonitor::output() const {
  return mode_ == Mode::kTopK ? topk_.output() : output_;
}

void HalfErrorMonitor::start(SimContext& ctx) {
  k_target_ = ctx.k();
  restart(ctx);
  // Drain violations induced by the initial round filters (V2 nodes above
  // u_r / below ℓ_r commit themselves right away).
  on_step(ctx);
}

void HalfErrorMonitor::restart(SimContext& ctx) {
  ++phases_;
  const ProbeInfo info = probe_top_k_plus_1(ctx);
  if (static_cast<double>(info.vk1) <
      (1.0 - ctx.epsilon()) * static_cast<double>(info.vk)) {
    mode_ = Mode::kTopK;
    topk_.begin_from_probe(ctx, info);
    return;
  }
  mode_ = Mode::kDenseRound;
  enter_dense_round(ctx, info);
}

void HalfErrorMonitor::enter_dense_round(SimContext& ctx, const ProbeInfo& info) {
  const double eps = ctx.epsilon();
  z_ = static_cast<double>(info.vk);
  lr_ = (1.0 - eps / 2.0) * z_;  // midpoint of [(1−ε)z, z]
  ur_ = lr_ / (1.0 - eps);

  // Classify via one broadcast (z) + enumeration of the non-V3 nodes.
  ctx.broadcast(MessageTag::kOther);
  role_.assign(ctx.n(), DenseComponent::Role::kV3);
  v1_count_ = v3_count_ = 0;
  const double floor_v2 = (1.0 - eps) * z_;
  auto high = enumerate_nodes(ctx, [&](const Node& node) {
    return static_cast<double>(node.value()) >= floor_v2;
  });
  for (const auto& hit : high) {
    const double v = static_cast<double>(hit.value);
    role_[hit.id] = v > ur_ ? DenseComponent::Role::kV1 : DenseComponent::Role::kV2;
  }
  for (NodeId i = 0; i < ctx.n(); ++i) {
    if (role_[i] == DenseComponent::Role::kV1) ++v1_count_;
    if (role_[i] == DenseComponent::Role::kV3) ++v3_count_;
  }
  const bool ok = rebuild_output();
  TOPKMON_ASSERT_MSG(ok, "half-error initial classification must yield k candidates");
  apply_filters(ctx);
}

bool HalfErrorMonitor::rebuild_output() {
  std::vector<bool> prev(role_.size(), false);
  for (NodeId id : output_) prev[id] = true;
  OutputSet forced;
  std::vector<NodeId> pool;
  for (NodeId i = 0; i < role_.size(); ++i) {
    if (role_[i] == DenseComponent::Role::kV1) forced.push_back(i);
    if (role_[i] == DenseComponent::Role::kV2) pool.push_back(i);
  }
  if (forced.size() > k_target_ || forced.size() + pool.size() < k_target_) {
    return false;
  }
  std::stable_sort(pool.begin(), pool.end(), [&](NodeId a, NodeId b) {
    if (prev[a] != prev[b]) return static_cast<bool>(prev[a]);
    return a < b;
  });
  output_ = forced;
  for (std::size_t i = 0; output_.size() < k_target_; ++i) {
    output_.push_back(pool[i]);
  }
  std::sort(output_.begin(), output_.end());
  return true;
}

void HalfErrorMonitor::apply_filters(SimContext& ctx) {
  const double lr = lr_;
  const double ur = ur_;
  ctx.broadcast_filters([&, lr, ur](const Node& node) {
    switch (role_[node.id()]) {
      case DenseComponent::Role::kV1: return Filter::at_least(lr);
      case DenseComponent::Role::kV2: return Filter{lr, ur};
      case DenseComponent::Role::kV3: return Filter::at_most(ur);
    }
    return Filter::all();
  });
}

bool HalfErrorMonitor::handle_dense_violation(SimContext& ctx, NodeId id, Value value,
                                              Violation side) {
  (void)value;
  switch (role_[id]) {
    case DenseComponent::Role::kV1:
    case DenseComponent::Role::kV3:
      // A committed node violated: Cor. 5.9's case analysis shows OPT(ε/2)
      // must have communicated; recompute from scratch.
      return true;
    case DenseComponent::Role::kV2:
      break;
  }
  if (side == Violation::kFromBelow) {
    role_[id] = DenseComponent::Role::kV1;  // observed above ur
    ++v1_count_;
  } else {
    role_[id] = DenseComponent::Role::kV3;  // observed below lr
    ++v3_count_;
  }
  // The node derives its committed-role filter from the broadcast state.
  ctx.set_filter_free(id, role_[id] == DenseComponent::Role::kV1
                              ? Filter::at_least(lr_)
                              : Filter::at_most(ur_));
  if (v1_count_ > k_target_) return true;                  // > k forced in
  if (role_.size() - v3_count_ < k_target_) return true;   // < k candidates
  if (v1_count_ == k_target_ && v3_count_ == role_.size() - k_target_) {
    // Unique output; the restart probe will certify the gap and hand over
    // to the TOP-K core.
    return true;
  }
  return !rebuild_output();
}

void HalfErrorMonitor::on_step(SimContext& ctx) {
  drain_violations(ctx, [&](NodeId id, Value value, Violation side) {
    if (mode_ == Mode::kTopK) {
      if (topk_.handle_violation(ctx, id, value, side)) {
        restart(ctx);
      }
      return;
    }
    if (handle_dense_violation(ctx, id, value, side)) {
      restart(ctx);
    }
  });
}

}  // namespace topkmon
